"""Property-based tests on the benchmark kernels' semantic invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import run_kernel
from repro.kernels import MergeSort, TreeSearch, get_benchmark


def sort_with_variant(bench: MergeSort, variant: str, keys: np.ndarray):
    problem = {"keys": keys}
    params = {"n": len(keys)}
    storage = bench.bind(variant, problem, params)
    for phase in bench.phases(variant, params):
        run_kernel(phase.kernel, phase.params, storage)
    return bench.extract(variant, storage)


class TestMergeSortProperties:
    @given(
        st.lists(
            st.floats(-1e6, 1e6, width=32), min_size=32, max_size=32
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_naive_merge_sorts_anything(self, values):
        keys = np.array(values, np.float32)
        result = sort_with_variant(MergeSort(), "naive", keys)
        np.testing.assert_array_equal(result, np.sort(keys))

    @given(
        st.lists(
            st.floats(-1e6, 1e6, width=32), min_size=64, max_size=64
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_bitonic_pipeline_sorts_anything(self, values):
        keys = np.array(values, np.float32)
        result = sort_with_variant(MergeSort(), "optimized", keys)
        np.testing.assert_array_equal(result, np.sort(keys))

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_sort_is_permutation(self, seed):
        rng = np.random.default_rng(seed)
        keys = rng.standard_normal(128).astype(np.float32)
        result = sort_with_variant(MergeSort(), "optimized", keys)
        np.testing.assert_array_equal(np.sort(result), np.sort(keys))


class TestTreeSearchProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_descent_lands_on_a_leaf_slot(self, seed):
        bench = TreeSearch()
        params = {"nq": 16, "depth": 5, "nn": (1 << 6) - 1}
        rng = np.random.default_rng(seed)
        problem = bench.make_problem(params, rng)
        storage = bench.bind("naive", problem, params)
        phase = bench.phases("naive", params)[0]
        run_kernel(phase.kernel, phase.params, storage)
        out = bench.extract("naive", storage)
        # depth-5 descent from the root lands in BFS slots [2^5-1, 2^6-1).
        assert np.all(out >= (1 << 5) - 1)
        assert np.all(out < (1 << 6) - 1)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_bst_descent_brackets_the_query(self, seed):
        """The key at the visited leaf is the closest separator: the query
        lies between the leaf's key and one neighbour in sorted order."""
        bench = TreeSearch()
        params = bench.test_params()
        rng = np.random.default_rng(seed)
        problem = bench.make_problem(params, rng)
        expected = bench.reference(problem, params)
        storage = bench.bind("naive", problem, params)
        phase = bench.phases("naive", params)[0]
        run_kernel(phase.kernel, phase.params, storage)
        np.testing.assert_array_equal(bench.extract("naive", storage), expected)


class TestConservationProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_lbm_conserves_mass(self, seed):
        """Collision relaxes toward equilibrium at the *same* density: the
        total mass of fdst equals the pulled mass (interior cells)."""
        bench = get_benchmark("lbm")
        params = bench.test_params()
        rng = np.random.default_rng(seed)
        problem = bench.make_problem(params, rng)
        out = bench.reference(problem, params)

        n = params["n"]
        from repro.kernels.lbm import DIRS, FIELDS

        f = np.stack([problem[name].astype(np.float64) for name in FIELDS])
        pulled_mass = 0.0
        for k, (dx, dy) in enumerate(DIRS):
            pulled_mass += f[k][1 - dy : n - 1 - dy, 1 - dx : n - 1 - dx].sum()
        assert out.sum() == pytest.approx(pulled_mass, rel=1e-4)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_nbody_forces_antisymmetric_for_pair(self, seed):
        """Two equal-mass bodies accelerate toward each other equally."""
        bench = get_benchmark("nbody")
        rng = np.random.default_rng(seed)
        pos = rng.uniform(-1, 1, (2, 3)).astype(np.float32)
        problem = {"pos": pos, "mass": np.ones(2, np.float32)}
        acc = bench.reference(problem, {"n": 2})
        np.testing.assert_allclose(acc[0], -acc[1], rtol=1e-4, atol=1e-5)

    @given(
        st.floats(5.0, 50.0), st.floats(5.0, 50.0), st.floats(0.3, 2.0)
    )
    @settings(max_examples=50, deadline=None)
    def test_blackscholes_put_call_parity(self, spot, strike, time):
        """call - put = S - K e^{-rT}: an exact identity of the model."""
        import math

        from repro.kernels.blackscholes import RISK_FREE, BlackScholes

        bench = BlackScholes()
        problem = {
            "spot": np.array([spot], np.float32),
            "strike": np.array([strike], np.float32),
            "time": np.array([time], np.float32),
        }
        out = bench.reference(problem, {"n": 1})
        call, put = float(out[0, 0]), float(out[0, 1])
        parity = spot - strike * math.exp(-RISK_FREE * time)
        assert call - put == pytest.approx(parity, rel=1e-3, abs=1e-3)
