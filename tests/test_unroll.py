"""Tests for the constant-trip full-unrolling pass."""

import numpy as np
import pytest

from repro.compiler.unroll import MAX_FULL_UNROLL_TRIPS, fully_unroll_const_loops
from repro.ir import Decl, F32, For, KernelBuilder, run_kernel, zeros_for


def build_const_loop_kernel(trips: int, parallel: bool = False):
    b = KernelBuilder("k")
    n = b.param("n")
    x = b.array("x", F32, (n,))
    with b.loop("i", n, parallel=parallel) as i:
        acc = b.let("acc", 0.0, F32)
        with b.loop("k", trips) as k:
            b.inc(acc, x[i] * 2.0)
        b.assign(x[i], acc)
    return b.build()


class TestUnrolling:
    def test_small_const_loop_flattens(self):
        kernel = fully_unroll_const_loops(build_const_loop_kernel(5))
        assert [loop.var for loop in kernel.loops()] == ["i"]

    def test_large_const_loop_kept(self):
        kernel = fully_unroll_const_loops(
            build_const_loop_kernel(MAX_FULL_UNROLL_TRIPS + 1)
        )
        assert len(kernel.loops()) == 2

    def test_symbolic_extent_kept(self):
        b = KernelBuilder("k")
        n = b.param("n")
        x = b.array("x", F32, (n,))
        with b.loop("i", n) as i:
            b.assign(x[i], 0.0)
        kernel = fully_unroll_const_loops(b.build())
        assert len(kernel.loops()) == 1

    def test_no_change_returns_same_object(self):
        b = KernelBuilder("k")
        n = b.param("n")
        x = b.array("x", F32, (n,))
        with b.loop("i", n) as i:
            b.assign(x[i], 1.0)
        kernel = b.build()
        assert fully_unroll_const_loops(kernel) is kernel

    def test_locals_renamed_apart(self):
        b = KernelBuilder("k")
        n = b.param("n")
        x = b.array("x", F32, (n,))
        with b.loop("i", n) as i:
            with b.loop("k", 3) as k:
                t = b.let("t", x[i] + 1.0, F32)
                b.assign(x[i], t * 2.0)
        kernel = fully_unroll_const_loops(b.build())
        decls = {s.name for s in kernel.walk_statements() if isinstance(s, Decl)}
        assert len(decls) == 3  # one 't' per unrolled copy

    def test_semantics_preserved(self, rng):
        """The unrolled kernel computes exactly what the original did."""
        b = KernelBuilder("poly")
        n = b.param("n")
        x = b.array("x", F32, (n,))
        y = b.array("y", F32, (n,))
        with b.loop("i", n) as i:
            acc = b.let("acc", 0.0, F32)
            with b.loop("k", 4) as k:
                b.inc(acc, x[i] * (k + 1))
        # acc = x*1 + x*2 + x*3 + x*4 = 10x
            b.assign(y[i], acc)
        original = b.build()
        unrolled = fully_unroll_const_loops(original)

        data = rng.standard_normal(16).astype(np.float32)
        out_a = np.zeros(16, np.float32)
        out_b = np.zeros(16, np.float32)
        run_kernel(original, {"n": 16}, {"x": data.copy(), "y": out_a})
        run_kernel(unrolled, {"n": 16}, {"x": data.copy(), "y": out_b})
        np.testing.assert_allclose(out_a, out_b, rtol=1e-6)
        np.testing.assert_allclose(out_a, 10 * data, rtol=1e-5)

    def test_nested_const_loops_flatten_fully(self):
        b = KernelBuilder("k")
        n = b.param("n")
        x = b.array("x", F32, (n,))
        with b.loop("i", n) as i:
            acc = b.let("acc", 0.0, F32)
            with b.loop("a", 2):
                with b.loop("c", 3):
                    b.inc(acc, x[i])
            b.assign(x[i], acc)
        kernel = fully_unroll_const_loops(b.build())
        assert [loop.var for loop in kernel.loops()] == ["i"]

    def test_parallel_loop_never_unrolled(self):
        b = KernelBuilder("k")
        n = b.param("n")
        x = b.array("x", F32, (4,))
        with b.loop("i", 4, parallel=True) as i:
            b.assign(x[i], 1.0)
        kernel = fully_unroll_const_loops(b.build())
        assert len(kernel.loops()) == 1
