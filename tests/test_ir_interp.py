"""Tests for the functional IR interpreter."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.ir import F32, I32, KernelBuilder, run_kernel, select, sqrt, zeros_for
from tests.conftest import (
    build_branchy,
    build_descent,
    build_dot,
    build_saxpy,
)


class TestBasics:
    def test_saxpy_matches_numpy(self, rng):
        kernel = build_saxpy()
        x = rng.standard_normal(64).astype(np.float32)
        y = rng.standard_normal(64).astype(np.float32)
        expected = (2.0 * x + y).astype(np.float32)
        run_kernel(kernel, {"n": 64}, {"x": x, "y": y})
        np.testing.assert_allclose(y, expected, rtol=1e-6)

    def test_dot_reduction(self, rng):
        kernel = build_dot()
        x = rng.standard_normal(128).astype(np.float32)
        y = rng.standard_normal(128).astype(np.float32)
        out = np.zeros(1, dtype=np.float32)
        run_kernel(kernel, {"n": 128}, {"x": x, "y": y, "out": out})
        assert out[0] == pytest.approx(float(np.dot(x, y)), rel=1e-4)

    def test_branchy_both_paths(self, rng):
        kernel = build_branchy()
        x = rng.standard_normal(50).astype(np.float32)
        y = np.zeros(50, dtype=np.float32)
        run_kernel(kernel, {"n": 50}, {"x": x, "y": y})
        expected = np.where(x > 0, x * 2.0, -x).astype(np.float32)
        np.testing.assert_allclose(y, expected)

    def test_record_arrays_by_field_dict(self, rng):
        b = KernelBuilder("swap")
        n = b.param("n")
        pts = b.array("pts", F32, (n,), fields=("x", "y"), layout="aos")
        with b.loop("i", n) as i:
            t = b.let("t", pts[i].x, F32)
            b.assign(pts[i].x, pts[i].y)
            b.assign(pts[i].y, t)
        kernel = b.build()
        xs = rng.standard_normal(10).astype(np.float32)
        ys = rng.standard_normal(10).astype(np.float32)
        storage = {"pts": {"x": xs.copy(), "y": ys.copy()}}
        run_kernel(kernel, {"n": 10}, storage)
        np.testing.assert_array_equal(storage["pts"]["x"], ys)
        np.testing.assert_array_equal(storage["pts"]["y"], xs)

    def test_descent_walks_tree(self):
        kernel = build_descent()
        depth, nn, nq = 3, 15, 4
        keys = np.array(
            [8, 4, 12, 2, 6, 10, 14, 1, 3, 5, 7, 9, 11, 13, 15],
            dtype=np.float32,
        )
        queries = np.array([0.5, 4.5, 8.5, 15.5], dtype=np.float32)
        out = np.zeros(nq, dtype=np.int32)
        run_kernel(
            kernel,
            {"nq": nq, "depth": depth, "nn": nn},
            {"keys": keys, "queries": queries, "out": out},
        )
        # Descending 3 levels of the BST lands on leaf slots 7..14.
        assert out.tolist() == [7, 9, 11, 14]


class TestFloat32Semantics:
    def test_f32_rounding_matches_numpy(self):
        b = KernelBuilder("acc")
        n = b.param("n")
        x = b.array("x", F32, (n,))
        out = b.array("out", F32, (1,))
        acc = b.let("acc", 0.0, F32)
        with b.loop("i", n) as i:
            b.inc(acc, x[i])
        b.assign(out[0], acc)
        kernel = b.build()
        x_data = np.full(1000, 0.1, dtype=np.float32)
        out = np.zeros(1, dtype=np.float32)
        run_kernel(kernel, {"n": 1000}, {"x": x_data, "out": out})
        expected = np.float32(0.0)
        for value in x_data:
            expected = np.float32(expected + value)
        assert out[0] == expected

    def test_math_functions(self):
        b = KernelBuilder("m")
        n = b.param("n")
        x = b.array("x", F32, (n,))
        y = b.array("y", F32, (n,))
        with b.loop("i", n) as i:
            b.assign(y[i], sqrt(x[i]))
        kernel = b.build()
        xs = np.array([1.0, 4.0, 9.0], dtype=np.float32)
        ys = np.zeros(3, dtype=np.float32)
        run_kernel(kernel, {"n": 3}, {"x": xs, "y": ys})
        np.testing.assert_allclose(ys, [1, 2, 3])


class TestGuards:
    def test_out_of_bounds_raises(self):
        b = KernelBuilder("oob")
        n = b.param("n")
        x = b.array("x", F32, (n,))
        with b.loop("i", n) as i:
            b.assign(x[i + 1], 0.0)
        kernel = b.build()
        with pytest.raises(SimulationError, match="out of bounds"):
            run_kernel(kernel, {"n": 4}, {"x": np.zeros(4, dtype=np.float32)})

    def test_missing_param(self):
        kernel = build_saxpy()
        with pytest.raises(SimulationError, match="missing"):
            run_kernel(kernel, {}, {"x": np.zeros(1, np.float32),
                                    "y": np.zeros(1, np.float32)})

    def test_wrong_dtype_rejected(self):
        kernel = build_saxpy()
        with pytest.raises(SimulationError, match="dtype"):
            run_kernel(
                kernel, {"n": 4},
                {"x": np.zeros(4, np.float64), "y": np.zeros(4, np.float32)},
            )

    def test_wrong_shape_rejected(self):
        kernel = build_saxpy()
        with pytest.raises(SimulationError, match="shape"):
            run_kernel(
                kernel, {"n": 4},
                {"x": np.zeros(5, np.float32), "y": np.zeros(4, np.float32)},
            )

    def test_statement_budget(self):
        kernel = build_saxpy()
        with pytest.raises(SimulationError, match="statements"):
            run_kernel(
                kernel, {"n": 100},
                {"x": np.zeros(100, np.float32), "y": np.zeros(100, np.float32)},
                max_statements=10,
            )


class TestZerosFor:
    def test_allocates_declared_shapes(self):
        kernel = build_descent()
        storage = zeros_for(kernel, {"nq": 8, "depth": 3, "nn": 15})
        assert storage["keys"].shape == (15,)
        assert storage["out"].dtype == np.int32

    def test_record_arrays_get_field_dicts(self, rng):
        b = KernelBuilder("k")
        n = b.param("n")
        b.array("pts", F32, (n,), fields=("x", "y"))
        kernel = b.build()
        storage = zeros_for(kernel, {"n": 5})
        assert set(storage["pts"]) == {"x", "y"}

    def test_access_hook_sees_all_accesses(self, rng):
        kernel = build_saxpy()
        events = []
        x = np.zeros(8, np.float32)
        y = np.zeros(8, np.float32)
        run_kernel(
            kernel, {"n": 8}, {"x": x, "y": y},
            on_access=lambda *e: events.append(e),
        )
        reads = [e for e in events if not e[3]]
        writes = [e for e in events if e[3]]
        assert len(reads) == 16  # x[i] and y[i] per iteration
        assert len(writes) == 8
