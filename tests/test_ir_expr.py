"""Tests for IR expression construction and typing."""

import pytest

from repro.errors import TypeMismatchError
from repro.ir import (
    BOOL,
    BinOp,
    Compare,
    Const,
    F32,
    F64,
    I32,
    I64,
    Load,
    Select,
    UnOp,
    VarRef,
    absval,
    as_expr,
    cast,
    erf,
    exp,
    land,
    lnot,
    log,
    lor,
    maximum,
    minimum,
    power,
    promote,
    rsqrt,
    select,
    sqrt,
)


class TestPromotion:
    def test_same_type(self):
        assert promote(F32, F32) == F32

    def test_float_beats_int(self):
        assert promote(F32, I64) == F32
        assert promote(I32, F64) == F64

    def test_wider_wins(self):
        assert promote(F32, F64) == F64
        assert promote(I32, I64) == I64

    def test_bool_refuses_arithmetic(self):
        with pytest.raises(TypeMismatchError):
            promote(BOOL, F32)


class TestOperatorOverloads:
    def test_add_builds_binop(self):
        x = VarRef("x", F32)
        expr = x + 1.0
        assert isinstance(expr, BinOp)
        assert expr.kind == "+"
        assert expr.dtype == F32
        assert expr.rhs == Const(1.0, F32)

    def test_radd_coerces_left_literal(self):
        x = VarRef("x", F32)
        expr = 2.0 * x
        assert isinstance(expr, BinOp)
        assert expr.lhs == Const(2.0, F32)

    def test_int_literal_against_float_var_promotes(self):
        x = VarRef("x", F32)
        expr = x + 1
        assert expr.dtype == F32

    def test_division_and_floordiv(self):
        i = VarRef("i", I64)
        assert (i / 2).kind == "/"
        assert (i // 2).kind == "//"
        assert (i % 4).kind == "%"

    def test_neg(self):
        x = VarRef("x", F32)
        expr = -x
        assert isinstance(expr, UnOp)
        assert expr.kind == "neg"

    def test_comparison_methods(self):
        x = VarRef("x", F32)
        cmp = x.lt(3.0)
        assert isinstance(cmp, Compare)
        assert cmp.dtype == BOOL
        assert x.ge(0.0).kind == ">="
        assert x.eq(1.0).kind == "=="

    def test_structural_equality(self):
        a = VarRef("x", F32) + 1.0
        b = VarRef("x", F32) + 1.0
        assert a == b

    def test_walk_visits_all_nodes(self):
        x = VarRef("x", F32)
        expr = (x + 1.0) * (x - 2.0)
        names = [n for n in expr.walk() if isinstance(n, VarRef)]
        assert len(names) == 2


class TestMathHelpers:
    def test_sqrt_keeps_dtype(self):
        assert sqrt(VarRef("x", F64)).dtype == F64

    def test_math_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            exp(VarRef("i", I64))

    def test_all_helpers_build_unops(self):
        x = VarRef("x", F32)
        for helper, kind in [
            (sqrt, "sqrt"), (rsqrt, "rsqrt"), (exp, "exp"),
            (log, "log"), (erf, "erf"),
        ]:
            node = helper(x)
            assert isinstance(node, UnOp)
            assert node.kind == kind

    def test_min_max_pow(self):
        x = VarRef("x", F32)
        assert minimum(x, 0.0).kind == "min"
        assert maximum(x, 0.0).kind == "max"
        assert power(x, 2.0).kind == "pow"

    def test_abs(self):
        assert absval(VarRef("i", I64)).dtype == I64

    def test_cast(self):
        node = cast(VarRef("i", I64), F32)
        assert node.kind == "cast"
        assert node.dtype == F32


class TestSelectAndLogic:
    def test_select_types(self):
        x = VarRef("x", F32)
        node = select(x.gt(0.0), x, 0.0)
        assert isinstance(node, Select)
        assert node.dtype == F32

    def test_select_arm_mismatch(self):
        x = VarRef("x", F32)
        with pytest.raises(TypeMismatchError):
            Select(x.gt(0.0), x, VarRef("i", I64), F32)

    def test_select_requires_bool_condition(self):
        x = VarRef("x", F32)
        with pytest.raises(TypeMismatchError):
            Select(x, x, x, F32)

    def test_logical_ops(self):
        x = VarRef("x", F32)
        a, b = x.gt(0.0), x.lt(1.0)
        assert land(a, b).kind == "and"
        assert lor(a, b).kind == "or"
        assert lnot(a).kind == "not"

    def test_logical_requires_bool(self):
        x = VarRef("x", F32)
        with pytest.raises(TypeMismatchError):
            land(x, x.gt(0.0))


class TestAsExpr:
    def test_int_default_is_i64(self):
        assert as_expr(3).dtype == I64

    def test_float_default_is_f32(self):
        assert as_expr(3.5).dtype == F32

    def test_bool(self):
        assert as_expr(True).dtype == BOOL

    def test_float_literal_rejects_int_hint(self):
        with pytest.raises(TypeMismatchError):
            as_expr(3.5, I64)

    def test_passthrough(self):
        x = VarRef("x", F32)
        assert as_expr(x) is x
