"""Tests for the thread-scaling analysis and the extension experiments."""

import pytest

from repro.analysis import thread_scaling
from repro.analysis.scaling import saturation_threads
from repro.compiler import CompilerOptions
from repro.experiments import run_experiment
from repro.kernels import get_benchmark
from repro.machines import CORE_I7_X980, MIC_KNF


class TestThreadScaling:
    def test_compute_kernel_scales_to_cores(self):
        points = thread_scaling(
            get_benchmark("blackscholes"), CORE_I7_X980,
            thread_counts=(1, 2, 6),
        )
        by_threads = {point.threads: point for point in points}
        assert by_threads[2].speedup == pytest.approx(2.0, rel=0.1)
        assert by_threads[6].speedup == pytest.approx(6.0, rel=0.15)

    def test_bandwidth_kernel_saturates(self):
        points = thread_scaling(
            get_benchmark("lbm"), CORE_I7_X980, thread_counts=(1, 2, 4, 6, 12)
        )
        assert saturation_threads(points) <= 6
        last = points[-1]
        assert last.speedup < 4.0  # DRAM wall well below 12x

    def test_speedups_monotone_nondecreasing(self):
        points = thread_scaling(
            get_benchmark("nbody"), CORE_I7_X980, thread_counts=(1, 2, 4, 6)
        )
        speeds = [point.speedup for point in points]
        assert speeds == sorted(speeds)

    def test_efficiency_bounded(self):
        points = thread_scaling(
            get_benchmark("conv2d"), CORE_I7_X980, thread_counts=(1, 2, 4)
        )
        for point in points:
            assert point.efficiency <= 1.1

    def test_default_thread_counts_cover_machine(self):
        points = thread_scaling(get_benchmark("conv2d"), MIC_KNF)
        assert points[0].threads == 1
        assert points[-1].threads == MIC_KNF.total_threads

    def test_smt_helps_latency_bound_kernels(self):
        """TreeSearch gains from SMT beyond the core count."""
        points = thread_scaling(
            get_benchmark("treesearch"), CORE_I7_X980, thread_counts=(6, 12)
        )
        assert points[-1].time_s < points[0].time_s


class TestResidualDecomposition:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("abl_residual")

    def test_rows_monotone_toward_parity(self, result):
        """Adding each ninja extra never makes any kernel slower."""
        columns = range(1, len(result.headers))
        for col in columns:
            values = [row[col] for row in result.rows]
            for earlier, later in zip(values, values[1:]):
                assert later <= earlier + 0.02

    def test_final_row_is_parity(self, result):
        assert all(value == pytest.approx(1.0, abs=0.05)
                   for value in result.rows[-1][1:])

    def test_streaming_stores_matter_for_bandwidth_kernels(self, result):
        headers = result.headers
        stencil_col = headers.index("stencil")
        before = next(r for r in result.rows if r[0] == "+ aligned data")
        after = next(r for r in result.rows if r[0] == "+ streaming stores")
        assert after[stencil_col] < before[stencil_col] - 0.1


class TestFutureArchitecture:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig9_future")

    def test_avx_residual_stays_small(self, result):
        # Geomean row: (label, _, _, _, resid AVX, resid AVX2, _).
        assert result.rows[-1][4] <= 1.5
        assert result.rows[-1][5] <= 1.5

    def test_compute_gap_grows_with_lanes(self, result):
        by_name = {row[0]: row for row in result.rows[:-1]}
        for name in ("nbody", "blackscholes", "libor"):
            assert by_name[name][2] > by_name[name][1]


class TestTreeSizeSweep:
    def test_cost_per_probe_grows_with_tree(self):
        result = run_experiment("abl_treesize")
        per_probe = [row[3] for row in result.rows]
        assert per_probe == sorted(per_probe)
        assert per_probe[-1] > 1.5 * per_probe[0]
