"""Tests for memory-access classification (the AOS/SOA/gather story)."""

import pytest

from repro.compiler import AccessContext, AccessPattern, classify_access
from repro.ir import F32, I64, VarRef
from repro.ir.kernel import ArrayDecl
from repro.ir.expr import as_expr

I = VarRef("i", I64)
J = VarRef("j", I64)
NODE = VarRef("node", I64)


def ctx(vec_var=None, lanes=1, ninja=False, dynamic=("node",)):
    return AccessContext(
        loop_vars=frozenset({"i", "j"}),
        dynamic_names=frozenset(dynamic),
        vec_var=vec_var,
        lanes=lanes,
        ninja=ninja,
    )


def plain(n_expr=1024):
    return ArrayDecl("a", F32, (as_expr(n_expr),))


def aos():
    return ArrayDecl("pts", F32, (as_expr(1024),), fields=("x", "y", "z"),
                     layout="aos")


def soa():
    return ArrayDecl("pts", F32, (as_expr(1024),), fields=("x", "y", "z"),
                     layout="soa")


class TestScalarContext:
    def test_everything_is_scalar_outside_vector_loops(self):
        info = classify_access(plain(), None, (I,), False, ctx())
        assert info.pattern is AccessPattern.SCALAR


class TestVectorPatterns:
    def test_unit_stride(self):
        info = classify_access(plain(), None, (I,), False, ctx("i", 4))
        assert info.pattern is AccessPattern.UNIT

    def test_unit_stride_aligned_when_offset_zero(self):
        info = classify_access(plain(), None, (I,), False, ctx("i", 4))
        assert info.aligned

    def test_offset_breaks_alignment(self):
        info = classify_access(plain(), None, (I + 1,), False, ctx("i", 4))
        assert info.pattern is AccessPattern.UNIT
        assert not info.aligned

    def test_lane_multiple_offset_stays_aligned(self):
        info = classify_access(plain(), None, (I + 8,), False, ctx("i", 4))
        assert info.aligned

    def test_ninja_is_always_aligned(self):
        info = classify_access(
            plain(), None, (I + 1,), False, ctx("i", 4, ninja=True)
        )
        assert info.aligned

    def test_constant_stride_two(self):
        info = classify_access(plain(), None, (I * 2,), False, ctx("i", 4))
        assert info.pattern is AccessPattern.STRIDED

    def test_aos_field_access_is_strided(self):
        info = classify_access(aos(), "x", (I,), False, ctx("i", 4))
        assert info.pattern is AccessPattern.STRIDED

    def test_soa_field_access_is_unit(self):
        info = classify_access(soa(), "x", (I,), False, ctx("i", 4))
        assert info.pattern is AccessPattern.UNIT

    def test_invariant_access_is_uniform(self):
        info = classify_access(plain(), None, (J,), False, ctx("i", 4))
        assert info.pattern is AccessPattern.UNIFORM

    def test_data_dependent_index_is_gather(self):
        info = classify_access(plain(), None, (NODE,), False, ctx("i", 4))
        assert info.pattern is AccessPattern.GATHER
        assert not info.is_affine

    def test_row_major_column_walk_is_strided(self):
        grid = ArrayDecl("g", F32, (as_expr(64), as_expr(64)))
        info = classify_access(grid, None, (I, J), False, ctx("i", 4))
        assert info.pattern is AccessPattern.STRIDED

    def test_row_major_row_walk_is_unit(self):
        grid = ArrayDecl("g", F32, (as_expr(64), as_expr(64)))
        info = classify_access(grid, None, (I, J), False, ctx("j", 4))
        assert info.pattern is AccessPattern.UNIT
        # Row starts may be misaligned: conservative.
        assert not info.aligned

    def test_count_is_preserved(self):
        info = classify_access(plain(), None, (I,), True, ctx("i", 4), count=0.25)
        assert info.count == 0.25
        assert info.is_write
