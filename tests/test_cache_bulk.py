"""Unit tests for the numpy bulk cache-replay path.

``Cache.access_run`` / ``CacheHierarchy.access_run`` must be
counter-exact to per-element ``access`` calls — same hit masks, same
stats, same resident set state, same flush behaviour, same errors.
The property-based layout/thread sweep lives in
``test_property_crossvalidation.py``; this file pins the primitive.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.machines import CORE_I7_X980, MIC_KNF
from repro.simulator.cache import Cache, CacheHierarchy


def _random_run(rng, n_max=600, addr_space=8192, repeat_max=5, write_p=0.4):
    n = int(rng.integers(1, n_max))
    addrs = rng.integers(0, addr_space, n).astype(np.int64)
    # Inject consecutive same-line runs so coalescing actually exercises.
    addrs = np.repeat(addrs, rng.integers(1, repeat_max, n))
    writes = rng.random(addrs.shape[0]) < write_p
    return addrs, writes


def _stats_tuple(cache):
    s = cache.stats
    return (s.accesses, s.hits, s.misses, s.writebacks)


class TestCacheAccessRun:
    def test_hit_mask_and_counters_match_per_access(self):
        rng = np.random.default_rng(11)
        for _ in range(25):
            addrs, writes = _random_run(rng)
            ref, bulk = (
                Cache(CORE_I7_X980.caches[0]),
                Cache(CORE_I7_X980.caches[0]),
            )
            expected = np.array(
                [
                    ref.access(int(a), bool(w))
                    for a, w in zip(addrs, writes)
                ]
            )
            got = bulk.access_run(addrs, writes)
            np.testing.assert_array_equal(expected, got)
            assert _stats_tuple(ref) == _stats_tuple(bulk)
            assert ref._sets == bulk._sets
            assert ref.flush_dirty() == bulk.flush_dirty()

    def test_split_runs_are_equivalent(self):
        """Partitioning a stream into arbitrary runs never changes
        counters (a run split mid-line still coalesces correctly)."""
        rng = np.random.default_rng(12)
        addrs, writes = _random_run(rng, n_max=400)
        whole = Cache(CORE_I7_X980.caches[0])
        split = Cache(CORE_I7_X980.caches[0])
        whole.access_run(addrs, writes)
        cut = int(rng.integers(1, addrs.shape[0]))
        split.access_run(addrs[:cut], writes[:cut])
        split.access_run(addrs[cut:], writes[cut:])
        assert _stats_tuple(whole) == _stats_tuple(split)
        assert whole._sets == split._sets

    def test_empty_run(self):
        cache = Cache(CORE_I7_X980.caches[0])
        mask = cache.access_run(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        )
        assert mask.shape == (0,)
        assert _stats_tuple(cache) == (0, 0, 0, 0)

    def test_single_line_run_is_one_miss_then_hits(self):
        cache = Cache(CORE_I7_X980.caches[0])
        addrs = np.array([128, 132, 136, 140], dtype=np.int64)
        writes = np.array([False, False, True, False])
        mask = cache.access_run(addrs, writes)
        np.testing.assert_array_equal(mask, [False, True, True, True])
        assert _stats_tuple(cache) == (4, 3, 1, 0)
        # The run's write-OR marked the line dirty.
        assert cache.flush_dirty() == 1

    def test_negative_address_matches_per_access_error(self):
        addrs = np.array([64, 128, -72, 12], dtype=np.int64)
        writes = np.zeros(4, dtype=bool)
        ref = Cache(CORE_I7_X980.caches[0])
        with pytest.raises(SimulationError) as per_access:
            for a, w in zip(addrs, writes):
                ref.access(int(a), bool(w))
        bulk = Cache(CORE_I7_X980.caches[0])
        with pytest.raises(SimulationError) as vectorized:
            bulk.access_run(addrs, writes)
        assert str(per_access.value) == str(vectorized.value)
        assert "-72" in str(vectorized.value)

    def test_reset_restores_fresh_state(self):
        cache = Cache(CORE_I7_X980.caches[0])
        addrs = np.arange(0, 4096, 4, dtype=np.int64)
        cache.access_run(addrs, np.ones(addrs.shape[0], dtype=bool))
        cache.reset()
        assert _stats_tuple(cache) == (0, 0, 0, 0)
        assert cache.flush_dirty() == 0
        fresh = Cache(CORE_I7_X980.caches[0])
        assert cache._sets == fresh._sets


class TestHierarchyAccessRun:
    @pytest.mark.parametrize("machine", [CORE_I7_X980, MIC_KNF])
    def test_counters_match_per_access(self, machine):
        rng = np.random.default_rng(13)
        for _ in range(10):
            addrs, writes = _random_run(rng, addr_space=1 << 16)
            ref, bulk = CacheHierarchy(machine), CacheHierarchy(machine)
            for a, w in zip(addrs.tolist(), writes.tolist()):
                ref.access(a, w)
            total = bulk.access_run(addrs, writes)
            assert total == addrs.shape[0]
            ref.flush()
            bulk.flush()
            for cache_ref, cache_bulk in zip(ref.levels, bulk.levels):
                assert _stats_tuple(cache_ref) == _stats_tuple(cache_bulk), (
                    cache_ref.spec.name
                )
            assert ref.total_dram_bytes() == bulk.total_dram_bytes()
            assert ref.traffic_bytes() == bulk.traffic_bytes()

    def test_reset_resets_every_level(self):
        hierarchy = CacheHierarchy(CORE_I7_X980)
        addrs = np.arange(0, 1 << 15, 4, dtype=np.int64)
        hierarchy.access_run(addrs, np.ones(addrs.shape[0], dtype=bool))
        hierarchy.reset()
        for cache in hierarchy.levels:
            assert _stats_tuple(cache) == (0, 0, 0, 0)
        assert hierarchy.total_dram_bytes() == 0
