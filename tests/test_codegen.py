"""Tests for the code generator's lowering decisions."""

import pytest

from repro.compiler import (
    AccessPattern,
    CompilerOptions,
    compile_kernel,
)
from repro.machines import CORE_I7_X980, MIC_KNF, OpClass
from tests.conftest import (
    build_branchy,
    build_descent,
    build_dot,
    build_saxpy,
)

BEST = CompilerOptions.best_traditional()
SERIAL = CompilerOptions.naive_serial()
NINJA = CompilerOptions.ninja_options()


class TestLoopStructure:
    def test_saxpy_tree_shape(self):
        ck = compile_kernel(build_saxpy(), BEST, CORE_I7_X980)
        assert len(ck.roots) == 1
        loop = ck.roots[0]
        assert loop.var == "i"
        assert loop.parallel
        assert loop.vector_lanes == 4
        assert not loop.children

    def test_nested_structure_preserved(self):
        ck = compile_kernel(build_descent(), BEST, CORE_I7_X980)
        outer = ck.roots[0]
        assert outer.var == "q"
        assert [c.var for c in outer.children] == ["d"]
        inner = outer.children[0]
        assert inner.vector_context == 4  # runs in the q-vector context
        assert inner.vector_lanes == 1

    def test_parallel_requires_openmp(self):
        ck = compile_kernel(build_saxpy(), SERIAL, CORE_I7_X980)
        assert not ck.roots[0].parallel
        assert not ck.has_parallel_loop


class TestOpEmission:
    def test_saxpy_ops(self):
        ck = compile_kernel(build_saxpy(), SERIAL, CORE_I7_X980)
        ops = ck.roots[0].ops
        assert ops.get(OpClass.FADD) == 1
        assert ops.get(OpClass.FMUL) == 1
        assert ops.get(OpClass.LOAD) == 2
        assert ops.get(OpClass.STORE) == 1
        assert ops.fma_pairs == 1

    def test_gather_lanes_under_vectorized_query_loop(self):
        ck = compile_kernel(build_descent(), BEST, CORE_I7_X980)
        inner = ck.roots[0].children[0]
        assert inner.ops.get(OpClass.GATHER_LANE) == 4
        patterns = {a.pattern for a in inner.accesses}
        assert AccessPattern.GATHER in patterns

    def test_reduction_chain_tracked(self):
        ck = compile_kernel(build_dot(), SERIAL, CORE_I7_X980)
        loop = ck.roots[0]
        assert loop.reduction_ops == (OpClass.FADD,)
        assert loop.accumulators == 1

    def test_fast_math_adds_accumulators(self):
        ck = compile_kernel(build_dot(), BEST, CORE_I7_X980)
        assert ck.roots[0].accumulators >= 2

    def test_ninja_has_more_accumulators_and_unroll(self):
        ck = compile_kernel(build_dot(), NINJA, CORE_I7_X980)
        loop = ck.roots[0]
        assert loop.accumulators == 8
        assert loop.unroll >= 4

    def test_vector_reduction_pays_epilogue(self):
        ck = compile_kernel(build_dot(), BEST, CORE_I7_X980)
        loop = ck.roots[0]
        assert loop.per_entry_ops.get(OpClass.REDUCE) > 0


class TestBranchLowering:
    def test_scalar_branch_is_probability_weighted(self):
        ck = compile_kernel(build_branchy(), SERIAL, CORE_I7_X980)
        loop = ck.roots[0]
        # p=0.3: expected 0.3 * then-mul + 0.7 * else-mul = 1 FMUL either way
        assert loop.ops.get(OpClass.FMUL) == pytest.approx(1.0)
        assert loop.branch_mispredicts == pytest.approx(2 * 0.3 * 0.7)
        writes = [a for a in loop.accesses if a.is_write]
        assert sum(a.count for a in writes) == pytest.approx(1.0)

    def test_vector_branch_executes_both_arms(self):
        ck = compile_kernel(build_branchy(), BEST, CORE_I7_X980)
        loop = ck.roots[0]
        # Masked execution: both arms nearly always run for 4 lanes.
        assert loop.ops.get(OpClass.FMUL) > 1.5
        assert loop.ops.get(OpClass.BLEND) >= 2
        assert loop.branch_mispredicts == 0.0


class TestHoisting:
    def test_invariant_load_moved_to_per_entry(self):
        from repro.ir import F32, KernelBuilder

        b = KernelBuilder("hoist")
        n = b.param("n")
        x = b.array("x", F32, (n,))
        scale = b.array("scale", F32, (1,))
        with b.loop("i", n) as i:
            b.assign(x[i], x[i] * scale[0])
        ck = compile_kernel(b.build(), SERIAL, CORE_I7_X980)
        loop = ck.roots[0]
        assert loop.ops.get(OpClass.LOAD) == 1  # only x[i]
        assert loop.per_entry_ops.get(OpClass.LOAD) == 1
        assert {a.array for a in loop.accesses} == {"x"}


class TestMachineAwareness:
    def test_mic_lanes(self):
        ck = compile_kernel(build_saxpy(), BEST, MIC_KNF)
        assert ck.roots[0].vector_lanes == 16
        assert ck.simd_width_bits == 512

    def test_isa_recorded(self):
        ck = compile_kernel(build_saxpy(), BEST, CORE_I7_X980)
        assert ck.isa_name == "SSE4.2"
