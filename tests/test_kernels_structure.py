"""Structural assertions: each benchmark exercises the compiler path the
paper describes for it (vectorizer verdicts, access patterns, layouts)."""

import pytest

from repro.compiler import (
    AccessPattern,
    CompilerOptions,
    compile_kernel,
    plan_vectorization,
)
from repro.compiler.unroll import fully_unroll_const_loops
from repro.kernels import (
    LBM,
    BackProjection,
    BlackScholes,
    ComplexConv,
    Conv2D,
    Libor,
    MergeSort,
    NBody,
    Stencil,
    TreeSearch,
    VolumeRender,
)
from repro.machines import CORE_I7_X980, MIC_KNF

AUTO = CompilerOptions.auto_vec()
BEST = CompilerOptions.best_traditional()
WESTMERE = CORE_I7_X980.core


def plans_for(kernel, options, core=WESTMERE):
    plans, report = plan_vectorization(
        fully_unroll_const_loops(kernel), options, core
    )
    return plans, report


class TestAosKernelsDeclineAutoVec:
    """The paper's central compiler observation: AOS layouts defeat the
    SSE auto-vectorizer; the SOA variants vectorize."""

    @pytest.mark.parametrize(
        "bench_cls,loop_var",
        [(NBody, "j"), (BlackScholes, "i"), (ComplexConv, "k"), (LBM, "x0")],
        ids=["nbody", "blackscholes", "cconv", "lbm"],
    )
    def test_naive_declined_optimized_vectorized(self, bench_cls, loop_var):
        bench = bench_cls()
        naive_plans, naive_report = plans_for(bench.kernel("naive"), AUTO)
        assert not naive_report.vectorized_loops()
        reason = naive_report.decision_for(loop_var).reason
        assert "gather" in reason or "inefficient" in reason
        opt_plans, _ = plans_for(bench.kernel("optimized"), BEST)
        assert opt_plans  # something vectorized

    def test_naive_nbody_vectorizes_on_mic(self):
        """Hardware gather flips the auto-vec verdict (paper §6)."""
        plans, _ = plans_for(NBody().kernel("naive"), AUTO, MIC_KNF.core)
        assert plans["j"].lanes == 16


class TestSequentialInnerLoops:
    def test_libor_step_loop_is_sequential(self):
        _plans, report = plans_for(Libor().kernel("naive"), AUTO)
        assert "scalar dependence" in report.decision_for("m").reason

    def test_libor_optimized_vectorizes_paths(self):
        plans, _ = plans_for(Libor().kernel("optimized"), BEST)
        assert plans["p"].lanes == 4

    def test_treesearch_descent_is_sequential(self):
        _plans, report = plans_for(TreeSearch().kernel("naive"), AUTO)
        assert "scalar dependence" in report.decision_for("d").reason

    def test_treesearch_optimized_vectorizes_queries_with_gathers(self):
        bench = TreeSearch()
        compiled = compile_kernel(bench.kernel("optimized"), BEST, CORE_I7_X980)
        outer = compiled.roots[0]
        assert outer.vector_lanes == 4
        inner = outer.children[0]
        patterns = {a.pattern for a in inner.accesses}
        assert AccessPattern.GATHER in patterns


class TestLayouts:
    def test_nbody_variants_differ_only_in_layout(self):
        bench = NBody()
        naive = bench.kernel("naive")
        optimized = bench.kernel("optimized")
        assert naive.array("body").layout == "aos"
        assert optimized.array("body").layout == "soa"

    def test_lbm_distribution_planes(self):
        bench = LBM()
        assert bench.kernel("naive").array("fsrc").num_fields == 9
        assert bench.kernel("optimized").array("fsrc").layout == "soa"

    def test_treesearch_tree_skew(self):
        assert TreeSearch().kernel("naive").array("keys").skew == "tree_bfs"

    def test_volume_skew_spatial(self):
        assert VolumeRender().kernel("naive").array("volume").skew == "spatial"


class TestStencilBlocking:
    def test_blocked_kernel_has_five_loops(self):
        kernel = Stencil().kernel("optimized")
        assert len(kernel.loops()) == 5

    def test_naive_kernel_has_three_loops(self):
        kernel = Stencil().kernel("naive")
        assert len(kernel.loops()) == 3

    def test_block_params_injected_by_phases(self):
        bench = Stencil()
        phase = bench.phases("optimized", {"n": 514})[0]
        assert phase.params["by"] == bench.BLOCK
        assert phase.params["bx"] == bench.BLOCK


class TestConv2dUnrolling:
    def test_naive_tap_loops_flatten(self):
        kernel = fully_unroll_const_loops(Conv2D().kernel("naive"))
        loop_vars = [loop.var for loop in kernel.loops()]
        assert "ky" not in loop_vars
        assert "kx" not in loop_vars

    def test_x_loop_vectorizes_after_unroll(self):
        plans, _ = plans_for(Conv2D().kernel("naive"), AUTO)
        assert "x" in plans


class TestMergeSortPhases:
    def test_naive_pass_count(self):
        bench = MergeSort()
        phases = bench.phases("naive", {"n": 1 << 10})
        assert len(phases) == 10
        widths = [phase.params["width"] for phase in phases]
        assert widths == [1 << level for level in range(10)]

    def test_optimized_block_then_merges(self):
        bench = MergeSort()
        phases = bench.phases("optimized", {"n": 1 << 10})
        assert phases[0].kernel.name.startswith("bitonic_block")
        assert len(phases) == 1 + 10 - 4  # block levels are fused

    def test_buffers_alternate(self):
        bench = MergeSort()
        phases = bench.phases("naive", {"n": 1 << 6})
        names = [phase.kernel.name for phase in phases]
        assert names[0] != names[1]
        assert names[0] == names[2]

    def test_power_of_two_enforced(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            MergeSort().phases("naive", {"n": 1000})


class TestBranchyKernels:
    def test_mergesort_naive_has_unpredictable_branch(self):
        bench = MergeSort()
        kernel = bench._merge_kernel("ab", branch_free=False)
        compiled = compile_kernel(
            kernel, CompilerOptions.naive_serial(), CORE_I7_X980
        )
        inner = compiled.roots[0].children[0]
        assert inner.branch_mispredicts == pytest.approx(0.5)

    def test_volume_render_early_out_probability(self):
        from repro.ir import If

        kernel = VolumeRender().kernel("naive")
        guards = [s for s in kernel.walk_statements() if isinstance(s, If)]
        assert guards and guards[0].probability == pytest.approx(0.55)

    def test_backprojection_gathers_under_simd(self):
        compiled = compile_kernel(
            BackProjection().kernel("optimized"), BEST, CORE_I7_X980
        )
        loops = list(compiled.all_loops())
        patterns = {a.pattern for loop in loops for a in loop.accesses}
        assert AccessPattern.GATHER in patterns
