"""Tests for the ninja-gap CLI."""

import pytest

from repro.experiments.runner import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_ladder_defaults(self):
        args = build_parser().parse_args(["ladder", "nbody"])
        assert args.machine == "westmere"
        assert not args.profile
        assert args.trace_out is None
        assert not args.json

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "abl_residual" in out

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Core i7 X980" in out
        assert "paper:" in out

    def test_ladder(self, capsys):
        assert main(["ladder", "conv2d"]) == 0
        out = capsys.readouterr().out
        assert "ninja gap" in out
        assert "residual" in out

    def test_ladder_with_machine_alias(self, capsys):
        assert main(["ladder", "conv2d", "--machine", "mic"]) == 0
        assert "Knights Ferry" in capsys.readouterr().out

    def test_report(self, capsys):
        assert main(["report", "nbody"]) == 0
        out = capsys.readouterr().out
        assert "VECTORIZED" in out
        assert "seems inefficient" in out

    def test_unknown_benchmark_raises(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            main(["ladder", "hpl"])


class TestObservabilityFlags:
    def test_ladder_profile_json(self, capsys):
        import json

        assert main(["ladder", "conv2d", "--profile", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["benchmark"] == "conv2d"
        assert set(data["rungs"]) == {
            "serial", "parallel", "autovec", "traditional", "ninja",
        }
        serial = data["rungs"]["serial"]
        assert serial["results"], "per-phase SimResults missing"
        profile = serial["results"][0]["profile"]
        assert profile is not None
        levels = profile["cache_levels"]
        for level in levels:
            assert level["hits"] + level["misses"] == pytest.approx(
                level["accesses"]
            )

    def test_ladder_profile_text(self, capsys):
        assert main(["ladder", "conv2d", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck attribution" in out
        assert "compile.vectorize" in out  # span table

    def test_ladder_trace_out(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        assert main(["ladder", "conv2d", "--trace-out", str(path)]) == 0
        trace = json.loads(path.read_text())
        assert trace["traceEvents"]
        names = {event["name"] for event in trace["traceEvents"]}
        assert "compile.vectorize" in names
        assert "simulate.analytic" in names

    def test_run_profile(self, capsys):
        # table2 is a spec table (no simulation), so the span report may
        # legitimately be empty — the smoke checks the section renders.
        assert main(["run", "table2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "spans" in out

    def test_report_json(self, capsys):
        import json

        assert main(["report", "nbody", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["benchmark"] == "nbody"
        rungs = [entry["rung"] for entry in data["reports"]]
        assert rungs == ["serial", "parallel", "autovec", "traditional", "ninja"]
        decisions = data["reports"][-1]["decisions"]
        assert any(d["vectorized"] for d in decisions)


class TestCompiledDescribe:
    def test_describe_shows_structure(self):
        from repro.compiler import CompilerOptions, compile_kernel
        from repro.kernels import get_benchmark
        from repro.machines import CORE_I7_X980

        compiled = compile_kernel(
            get_benchmark("nbody").kernel("optimized"),
            CompilerOptions.best_traditional(),
            CORE_I7_X980,
        )
        text = compiled.describe()
        assert "loop i" in text
        assert "loop j" in text
        assert "vector x4" in text
        assert "parallel" in text
        assert "reduction" in text
