"""Tests for the ninja-gap CLI."""

import pytest

from repro.experiments.runner import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_ladder_defaults(self):
        args = build_parser().parse_args(["ladder", "nbody"])
        assert args.machine == "westmere"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "abl_residual" in out

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Core i7 X980" in out
        assert "paper:" in out

    def test_ladder(self, capsys):
        assert main(["ladder", "conv2d"]) == 0
        out = capsys.readouterr().out
        assert "ninja gap" in out
        assert "residual" in out

    def test_ladder_with_machine_alias(self, capsys):
        assert main(["ladder", "conv2d", "--machine", "mic"]) == 0
        assert "Knights Ferry" in capsys.readouterr().out

    def test_report(self, capsys):
        assert main(["report", "nbody"]) == 0
        out = capsys.readouterr().out
        assert "VECTORIZED" in out
        assert "seems inefficient" in out

    def test_unknown_benchmark_raises(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            main(["ladder", "hpl"])


class TestCompiledDescribe:
    def test_describe_shows_structure(self):
        from repro.compiler import CompilerOptions, compile_kernel
        from repro.kernels import get_benchmark
        from repro.machines import CORE_I7_X980

        compiled = compile_kernel(
            get_benchmark("nbody").kernel("optimized"),
            CompilerOptions.best_traditional(),
            CORE_I7_X980,
        )
        text = compiled.describe()
        assert "loop i" in text
        assert "loop j" in text
        assert "vector x4" in text
        assert "parallel" in text
        assert "reduction" in text
