"""The cycle-accounting ledger: exact closure, everywhere, provably.

The tentpole guarantee under test: for **every** (kernel, rung, machine)
grid point the analytic model prices, the ledger's categories sum to
``time_s`` within ``CLOSURE_RTOL`` relative tolerance — enforced at
construction, asserted here across the full benchmark × ladder × preset
matrix (MIC included).  Plus the identity guarantees: ledgers are
byte-identical between the JIT and interpreter execution backends and
across memo-cache cold/warm runs, and deserialization is strict (schema
violations quarantine instead of crashing).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.gap import LADDER_RUNGS, run_rung
from repro.engine import engine_session, sim_memo_key
from repro.engine.sim import cached_simulate
from repro.errors import AccountingError, ResultSchemaError, RobustnessError
from repro.jit import no_jit
from repro.kernels import all_benchmarks, get_benchmark
from repro.machines import get_machine
from repro.machines.ops import PORTS
from repro.machines.presets import PRESETS
from repro.observability import CLOSURE_RTOL, CycleLedger, tracing
from repro.simulator import SimResult


def _ledger_bytes(ledger: CycleLedger) -> str:
    """Canonical byte form for identity assertions."""
    return json.dumps(ledger.to_dict(), sort_keys=True)


def _expected_categories(machine) -> set:
    names = {f"issue.{port}" for port in PORTS}
    names |= {
        "issue.frontend", "reduction.chain", "branch.mispredict",
        "loop.control", "stall.DRAM", "parallel.imbalance",
        "parallel.barrier",
    }
    names |= {f"stall.{cache.name}" for cache in machine.caches[1:]}
    for level in range(len(machine.caches)):
        if level + 1 < len(machine.caches):
            names.add(f"bandwidth.{machine.caches[level + 1].name}")
        else:
            names.add("bandwidth.DRAM")
    return names


class TestClosureMatrix:
    """Every benchmark × rung × machine closes exactly."""

    @pytest.mark.parametrize("machine_name", sorted(PRESETS))
    def test_full_matrix_closure(self, machine_name):
        machine = PRESETS[machine_name]
        expected = _expected_categories(machine)
        for bench in all_benchmarks():
            compiled: dict = {}
            for label, variant, options in LADDER_RUNGS:
                collected: list[SimResult] = []
                rung = run_rung(
                    bench, variant, options, machine,
                    label=label, _cache=compiled, collect=collected,
                )
                assert collected, f"{bench.name}/{label}: no phases ran"
                for result in collected:
                    ledger = result.ledger
                    assert ledger is not None, (
                        f"{bench.name}/{label} on {machine_name}: no ledger"
                    )
                    # Construction already enforces closure; assert it
                    # independently so a validate() regression cannot hide.
                    assert ledger.residual_rel <= CLOSURE_RTOL
                    assert set(ledger.categories) == expected
                    assert all(s >= 0.0 for s in ledger.categories.values())
                # The rung aggregate (phases scaled + merged) closes too.
                assert rung.ledger is not None
                assert rung.ledger.residual_rel <= CLOSURE_RTOL
                assert rung.ledger.time_s == pytest.approx(
                    rung.time_s, rel=1e-12
                )


class TestBackendAndMemoIdentity:
    """Ledgers are byte-identical across backends and cache temperature."""

    def test_jit_vs_interpreter_identity(self):
        machine = get_machine("westmere")
        for bench in all_benchmarks():
            for label, variant, options in (
                LADDER_RUNGS[0], LADDER_RUNGS[-1]
            ):
                jit_rung = run_rung(
                    bench, variant, options, machine, label=label
                )
                with no_jit():
                    interp_rung = run_rung(
                        bench, variant, options, machine, label=label
                    )
                assert jit_rung.ledger is not None
                assert _ledger_bytes(jit_rung.ledger) == _ledger_bytes(
                    interp_rung.ledger
                ), f"{bench.name}/{label}: backend changed the ledger"

    def test_memo_cold_warm_identity(self, tmp_path):
        bench = get_benchmark("blackscholes")
        machine = get_machine("westmere")
        label, variant, options = LADDER_RUNGS[-1]
        uncached = run_rung(bench, variant, options, machine, label=label)
        with engine_session(cache_dir=str(tmp_path / "memo")) as cfg:
            cold = run_rung(bench, variant, options, machine, label=label)
            assert cfg.cache.stats.puts > 0
            warm = run_rung(bench, variant, options, machine, label=label)
            assert cfg.cache.stats.hits > 0
            audit = cfg.report()["accounting"]
            assert audit["points"] > 0
            assert audit["worst_residual_rel"] <= CLOSURE_RTOL
        assert (
            _ledger_bytes(uncached.ledger)
            == _ledger_bytes(cold.ledger)
            == _ledger_bytes(warm.ledger)
        )

    def test_round_trip_is_exact(self):
        bench = get_benchmark("nbody")
        machine = get_machine("westmere")
        phase = next(iter(bench.phases("naive", bench.paper_params())))
        result = cached_simulate(
            phase.kernel, LADDER_RUNGS[0][2], machine, phase.params
        )
        rebuilt = SimResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert _ledger_bytes(rebuilt.ledger) == _ledger_bytes(result.ledger)


class TestLedgerArithmetic:
    def test_scaled_and_merge_preserve_closure(self):
        machine = get_machine("westmere")
        bench = get_benchmark("blackscholes")
        rung = run_rung(bench, "naive", LADDER_RUNGS[0][2], machine)
        ledger = rung.ledger
        tripled = ledger.scaled(3)
        assert tripled.time_s == pytest.approx(ledger.time_s * 3, rel=1e-12)
        merged = CycleLedger.merge([ledger, tripled, ledger.scaled(0)])
        assert merged.residual_rel <= CLOSURE_RTOL
        assert merged.time_s == pytest.approx(ledger.time_s * 4, rel=1e-12)

    def test_negative_scale_rejected(self):
        ledger = CycleLedger(time_s=1.0, frequency_hz=1e9,
                             categories={"issue.alu": 1.0})
        with pytest.raises(AccountingError):
            ledger.scaled(-1)

    def test_merge_empty_rejected(self):
        with pytest.raises(AccountingError):
            CycleLedger.merge([])

    def test_construction_enforces_closure(self):
        with pytest.raises(AccountingError):
            CycleLedger(time_s=1.0, frequency_hz=1e9,
                        categories={"issue.alu": 0.5})
        with pytest.raises(AccountingError):
            CycleLedger(time_s=1.0, frequency_hz=1e9,
                        categories={"issue.alu": 1.0, "stall.DRAM": -0.0001})


class TestStrictDeserialization:
    """Schema violations raise ResultSchemaError (a RobustnessError)."""

    def _result_dict(self):
        bench = get_benchmark("blackscholes")
        machine = get_machine("westmere")
        phase = next(iter(bench.phases("naive", bench.paper_params())))
        return cached_simulate(
            phase.kernel, LADDER_RUNGS[0][2], machine, phase.params
        ).to_dict()

    def test_missing_field_rejected(self):
        data = self._result_dict()
        del data["time_s"]
        with pytest.raises(ResultSchemaError, match="missing"):
            SimResult.from_dict(data)

    def test_unknown_field_rejected(self):
        data = self._result_dict()
        data["bogus_field"] = 1
        with pytest.raises(ResultSchemaError, match="unknown"):
            SimResult.from_dict(data)

    def test_schema_error_is_robustness_error(self):
        assert issubclass(ResultSchemaError, RobustnessError)

    def test_tampered_ledger_rejected(self):
        data = self._result_dict()
        ledger = data["profile"]["ledger"]
        first = next(iter(ledger["categories"]))
        ledger["categories"][first] += max(1e-3, ledger["time_s"])
        with pytest.raises(ResultSchemaError, match="close"):
            SimResult.from_dict(data)

    def test_malformed_values_rejected(self):
        data = self._result_dict()
        data["time_s"] = "not-a-number"
        data["level_times_s"] = None
        with pytest.raises(ResultSchemaError):
            SimResult.from_dict(data)


class TestMemoQuarantine:
    """A checksum-valid entry with a stale/tampered payload quarantines."""

    def _key_and_point(self, machine):
        bench = get_benchmark("blackscholes")
        phase = next(iter(bench.phases("naive", bench.paper_params())))
        label, variant, options = LADDER_RUNGS[0]
        key = sim_memo_key(
            phase.kernel, phase.params, options, machine,
            simulator="analytic", threads=None,
        )
        return phase, options, key

    def test_schema_reject_quarantines_and_recomputes(self, tmp_path):
        machine = get_machine("westmere")
        with engine_session(cache_dir=str(tmp_path / "memo")) as cfg:
            phase, options, key = self._key_and_point(machine)
            # A well-checksummed entry whose payload is from another world.
            cfg.cache.put(key, {"bogus": 1})
            with tracing() as tracer:
                result = cached_simulate(
                    phase.kernel, options, machine, phase.params
                )
            assert result.ledger is not None
            assert result.ledger.residual_rel <= CLOSURE_RTOL
            assert cfg.cache.stats.quarantined == 1
            assert cfg.faults.get("memo_schema_reject") == 1
            names = {span.name for span in tracer.spans}
            assert "engine.memo.quarantine" in names
            # The recompute re-published a good entry: a second read hits.
            with tracing() as tracer2:
                again = cached_simulate(
                    phase.kernel, options, machine, phase.params
                )
            assert "engine.memo.hit" in {s.name for s in tracer2.spans}
            assert _ledger_bytes(again.ledger) == _ledger_bytes(result.ledger)
