"""Tests for the trace-driven set-associative cache simulator."""

import pytest

from repro.machines import CORE_I7_X980
from repro.machines.spec import CacheSpec
from repro.simulator import Cache, CacheHierarchy
from repro.units import kib


def small_cache(capacity=kib(1), line=64, ways=2):
    return Cache(CacheSpec("T", capacity, line, ways, 1))


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0, False) is False
        assert cache.access(0, False) is True
        assert cache.access(63, False) is True   # same line
        assert cache.access(64, False) is False  # next line

    def test_stats(self):
        cache = small_cache()
        for addr in range(0, 1024, 64):
            cache.access(addr, False)
        assert cache.stats.accesses == 16
        assert cache.stats.misses == 16
        for addr in range(0, 1024, 64):
            cache.access(addr, False)
        assert cache.stats.hits == 16
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_lru_eviction_within_set(self):
        # 1 KiB, 2-way, 64B lines -> 8 sets; addresses 0, 512, 1024 share set 0.
        cache = small_cache()
        cache.access(0, False)
        cache.access(512, False)
        cache.access(0, False)      # refresh line 0 to MRU
        cache.access(1024, False)   # evicts 512 (LRU), not 0
        assert cache.access(0, False) is True
        assert cache.access(512, False) is False

    def test_writeback_on_dirty_eviction(self):
        cache = small_cache()
        cache.access(0, True)       # dirty
        cache.access(512, False)
        cache.access(1024, False)   # evicts dirty line 0
        assert cache.stats.writebacks == 1

    def test_flush_dirty(self):
        cache = small_cache()
        cache.access(0, True)
        cache.access(64, True)
        assert cache.flush_dirty() == 2
        assert cache.flush_dirty() == 0

    def test_capacity_behaviour(self):
        """Working set <= capacity re-hits; 2x capacity thrashes."""
        cache = small_cache(capacity=kib(1))
        fits = range(0, 1024, 64)
        for _sweep in range(3):
            for addr in fits:
                cache.access(addr, False)
        assert cache.stats.misses == 16  # only the cold sweep missed

    def test_negative_address_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            small_cache().access(-1, False)


class TestHierarchy:
    def test_miss_walks_all_levels(self):
        hierarchy = CacheHierarchy(CORE_I7_X980)
        level = hierarchy.access(0, False)
        assert level == len(hierarchy.levels)  # DRAM on cold access
        assert hierarchy.access(0, False) == 0  # L1 hit after fill

    def test_l1_capacity_eviction_hits_l2(self):
        hierarchy = CacheHierarchy(CORE_I7_X980)
        l1_bytes = CORE_I7_X980.caches[0].capacity_bytes
        # Touch 2x the L1: the early lines fall out of L1 but stay in L2.
        for addr in range(0, 2 * l1_bytes, 64):
            hierarchy.access(addr, False)
        assert hierarchy.access(0, False) == 1  # L2 hit

    def test_traffic_accounting(self):
        hierarchy = CacheHierarchy(CORE_I7_X980)
        for addr in range(0, 64 * 100, 64):
            hierarchy.access(addr, False)
        assert hierarchy.traffic_bytes() == (6400, 6400, 6400)

    def test_dram_bytes_include_writebacks(self):
        hierarchy = CacheHierarchy(CORE_I7_X980)
        for addr in range(0, 64 * 10, 64):
            hierarchy.access(addr, True)
        hierarchy.flush()
        assert hierarchy.total_dram_bytes() == 640 + 640
