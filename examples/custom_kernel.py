"""Scenario: bring your own kernel through the whole pipeline.

Defines a new kernel with the builder DSL (a Horner-scheme polynomial
evaluator), then walks it through everything the library offers:

1. functional execution against numpy (is the kernel right?),
2. the vectorization report at each compiler rung (what did icc say?),
3. analytic simulation on two machines (how fast, bound by what?),
4. a ground-truth cache trace (does the analytic model agree?).

Run with::

    python examples/custom_kernel.py
"""

import numpy as np

from repro import (
    CORE_I7_X980,
    F32,
    KernelBuilder,
    MIC_KNF,
    CompilerOptions,
    compile_kernel,
    run_kernel,
    simulate,
    trace_kernel,
)
from repro.analysis import format_table
from repro.ir import format_kernel

COEFFS = (0.5, -1.25, 0.75, 2.0)  # highest degree first


def build_polyval():
    """y[i] = polyval(COEFFS, x[i]) via Horner's scheme."""
    b = KernelBuilder("polyval", doc="Horner-scheme polynomial evaluation")
    n = b.param("n")
    x = b.array("x", F32, (n,))
    y = b.array("y", F32, (n,))
    with b.loop("i", n, parallel=True) as i:
        xi = b.let("xi", x[i], F32)
        acc = b.let("acc", COEFFS[0], F32)
        for coeff in COEFFS[1:]:
            b.assign(acc, acc * xi + coeff)
        b.assign(y[i], acc)
    return b.build()


def main() -> None:
    kernel = build_polyval()
    print(format_kernel(kernel))

    # 1. functional check against numpy
    rng = np.random.default_rng(42)
    xs = rng.standard_normal(1000).astype(np.float32)
    ys = np.zeros_like(xs)
    run_kernel(kernel, {"n": 1000}, {"x": xs, "y": ys})
    np.testing.assert_allclose(ys, np.polyval(COEFFS, xs), rtol=1e-3, atol=1e-6)
    print("\nfunctional check vs numpy.polyval: OK")

    # 2. + 3. compile at every rung and simulate
    rows = []
    for options in (
        CompilerOptions.naive_serial(),
        CompilerOptions.parallel_only(),
        CompilerOptions.best_traditional(),
        CompilerOptions.ninja_options(),
    ):
        compiled = compile_kernel(kernel, options, CORE_I7_X980)
        result = simulate(compiled, CORE_I7_X980, {"n": 8_000_000})
        rows.append(
            (
                options.label,
                compiled.report.decision_for("i").vectorized,
                round(result.time_s * 1e3, 2),
                round(result.gflops, 1),
                result.bottleneck,
            )
        )
    print()
    print(
        format_table(
            ("options", "vectorized", "time (ms)", "GFLOP/s", "bound by"),
            rows,
            title=f"polyval on {CORE_I7_X980.name} (n=8M)",
        )
    )
    best = compile_kernel(
        kernel, CompilerOptions.best_traditional(), CORE_I7_X980
    )
    print("\nvectorization report:")
    print(best.report.render())

    mic = simulate(
        compile_kernel(kernel, CompilerOptions.best_traditional(), MIC_KNF),
        MIC_KNF,
        {"n": 8_000_000},
    )
    print(f"\nsame source on {MIC_KNF.name}: {mic.describe()}")

    # 4. ground-truth cache trace on a small instance
    n_small = 20_000
    storage = {
        "x": rng.standard_normal(n_small).astype(np.float32),
        "y": np.zeros(n_small, np.float32),
    }
    traced = trace_kernel(kernel, {"n": n_small}, storage, CORE_I7_X980)
    analytic = simulate(
        compile_kernel(kernel, CompilerOptions.naive_serial(), CORE_I7_X980),
        CORE_I7_X980,
        {"n": n_small},
        threads=1,
    )
    print(
        f"\nDRAM bytes, n={n_small}: traced "
        f"{traced.hierarchy.total_dram_bytes() / 1e3:.0f} KB vs analytic "
        f"{analytic.traffic_bytes[-1] / 1e3:.0f} KB"
    )


if __name__ == "__main__":
    main()
