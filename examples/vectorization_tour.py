"""Scenario: a tour of the compiler's vectorization decisions.

For every benchmark in the suite, print what the auto-vectorizer says
about the *naive* source and what unlocks the optimized variant — the
`icc -vec-report` experience the paper's methodology is built on.

Run with::

    python examples/vectorization_tour.py
"""

from repro import CORE_I7_X980, CompilerOptions, compile_kernel
from repro.compiler.unroll import fully_unroll_const_loops
from repro.compiler import plan_vectorization
from repro.kernels import all_benchmarks


def main() -> None:
    auto = CompilerOptions.auto_vec()
    best = CompilerOptions.best_traditional()
    for bench in all_benchmarks():
        print(f"=== {bench.title} ({bench.category}) ===")
        print(f"paper change: {bench.paper_change}\n")

        naive = fully_unroll_const_loops(bench.kernel("naive"))
        _plans, report = plan_vectorization(naive, auto, CORE_I7_X980.core)
        print("naive source, auto-vectorizer:")
        for line in report.render().splitlines():
            print(f"  {line}")

        compiled = compile_kernel(bench.kernel("optimized"), best, CORE_I7_X980)
        print("optimized source, pragmas honored:")
        for line in compiled.report.render().splitlines():
            print(f"  {line}")
        print()


if __name__ == "__main__":
    main()
