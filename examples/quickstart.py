"""Quickstart: measure one benchmark's Ninja gap.

Runs BlackScholes — the paper's largest-gap kernel — up the programming
effort ladder on the simulated Core i7 X980 and prints what each rung
buys, exactly like the paper's Figure 1 bars.

Run with::

    python examples/quickstart.py
"""

from repro import CORE_I7_X980, get_benchmark, measure_ladder
from repro.analysis import RUNG_LABELS, breakdown, format_table


def main() -> None:
    bench = get_benchmark("blackscholes")
    print(f"benchmark: {bench.title} — {bench.paper_change}")
    print(f"machine:   {CORE_I7_X980.name}\n")

    ladder = measure_ladder(bench, CORE_I7_X980)

    rows = []
    for label in RUNG_LABELS:
        rung = ladder.rungs[label]
        rows.append(
            (
                label,
                rung.variant,
                round(rung.time_s * 1e3, 2),
                round(rung.gflops, 1),
                round(ladder.time("serial") / rung.time_s, 1),
                rung.bottleneck,
            )
        )
    print(
        format_table(
            ("rung", "source", "time (ms)", "GFLOP/s", "speedup", "bound by"),
            rows,
        )
    )

    parts = breakdown(ladder)
    print(f"\nNinja gap: {ladder.ninja_gap:.1f}X  (paper: up to 53X)")
    print(
        f"  = threading {parts.threading:.1f}x"
        f" * vectorization {parts.vectorization:.2f}x"
        f" * algorithmic {parts.algorithmic:.2f}x"
        f" * ninja extras {parts.ninja_extras:.2f}x"
    )
    print(
        f"residual gap after low-effort changes: {ladder.residual_gap:.2f}X"
        "  (paper: 1.3X average)"
    )


if __name__ == "__main__":
    main()
