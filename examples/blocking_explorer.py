"""Scenario: explore cache blocking for the 7-point stencil.

The stencil is the paper's bandwidth-bound poster child: once vectorized
it saturates DRAM, and the only remaining lever is *traffic*.  This script
sweeps the 2.5D block edge and shows time, DRAM traffic, and the
bottleneck flip from DRAM back to compute once the block column fits in
cache — then compares against the naive sweep and the Ninja version with
streaming stores.

Run with::

    python examples/blocking_explorer.py
"""

from repro import CORE_I7_X980, CompilerOptions, compile_kernel, simulate
from repro.analysis import format_table
from repro.kernels import Stencil


def main() -> None:
    bench = Stencil()
    n = bench.paper_params()["n"]
    array_mb = n**3 * 4 / 1e6
    print(
        f"7-point stencil, {n}^3 grid ({array_mb:.0f} MB per array) on "
        f"{CORE_I7_X980.name}\n"
    )

    options = CompilerOptions.best_traditional()
    rows = []

    naive = simulate(
        compile_kernel(bench.kernel("naive"), options, CORE_I7_X980),
        CORE_I7_X980,
        {"n": n},
    )
    rows.append(
        (
            "naive sweep",
            round(naive.time_s * 1e3, 1),
            round(naive.traffic_bytes[-1] / (n**3 * 4), 2),
            naive.bottleneck,
        )
    )

    blocked = compile_kernel(bench.kernel("optimized"), options, CORE_I7_X980)
    for block in (16, 32, 64, 128, 256):
        result = simulate(
            blocked, CORE_I7_X980, {"n": n, "by": block, "bx": block}
        )
        rows.append(
            (
                f"blocked {block}x{block}",
                round(result.time_s * 1e3, 1),
                round(result.traffic_bytes[-1] / (n**3 * 4), 2),
                result.bottleneck,
            )
        )

    ninja = simulate(
        compile_kernel(
            bench.kernel("ninja"), CompilerOptions.ninja_options(), CORE_I7_X980
        ),
        CORE_I7_X980,
        {"n": n, "by": bench.BLOCK, "bx": bench.BLOCK},
    )
    rows.append(
        (
            "ninja (NT stores)",
            round(ninja.time_s * 1e3, 1),
            round(ninja.traffic_bytes[-1] / (n**3 * 4), 2),
            ninja.bottleneck,
        )
    )

    print(
        format_table(
            ("version", "time (ms)", "DRAM traffic (arrays)", "bound by"),
            rows,
        )
    )
    print(
        "\nNaive re-reads each plane ~3x; blocking drops traffic to the "
        "compulsory 1 read + 2 writes (RFO); streaming stores kill the RFO."
    )


if __name__ == "__main__":
    main()
