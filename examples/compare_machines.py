"""Scenario: the Ninja gap across machines — why it 'inevitably grows'.

Takes three benchmarks with very different characters and measures their
gap on every modelled platform, from the 2-core Core 2 to the 32-core MIC.
The punchline is the paper's: machines keep adding cores and lanes, naive
serial code uses neither, so doing nothing gets relatively worse every
generation — while the *same* low-effort changes keep you within ~1.3X.

Run with::

    python examples/compare_machines.py
"""

from repro import GENERATIONS, MIC_KNF, get_benchmark, measure_ladder
from repro.analysis import format_table

BENCHES = ("blackscholes", "stencil", "treesearch")


def main() -> None:
    machines = list(GENERATIONS) + [MIC_KNF]
    rows = []
    for machine in machines:
        row = [
            machine.name,
            machine.num_cores * machine.simd_lanes(4),
        ]
        for name in BENCHES:
            ladder = measure_ladder(get_benchmark(name), machine)
            row.append(round(ladder.ninja_gap, 1))
            row.append(round(ladder.residual_gap, 2))
        rows.append(tuple(row))

    headers = ["machine", "cores x lanes"]
    for name in BENCHES:
        headers += [f"{name} gap", f"{name} resid"]
    print(format_table(headers, rows))

    print(
        "\nThe naive-code gap scales with cores x lanes; the residual gap "
        "after the paper's low-effort changes stays flat — traditional "
        "programming keeps up with the hardware."
    )


if __name__ == "__main__":
    main()
