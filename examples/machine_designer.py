"""Scenario: design a hypothetical machine and predict its Ninja gap.

The machine models are plain dataclasses, so "what if" questions are one
`with_overrides` away. This script asks three the paper's conclusion
invites:

1. What if Westmere had 16 cores?       (the gap keeps growing)
2. What if DRAM bandwidth doubled too?  (bandwidth kernels come back)
3. What if SSE had hardware gather?     (§6's programmability hardware)

Run with::

    python examples/machine_designer.py
"""

import dataclasses

from repro import CORE_I7_X980, get_benchmark, measure_ladder
from repro.analysis import format_table
from repro.machines.ops import OpClass, OpCost, OpCostTable

BENCHES = ("blackscholes", "stencil", "treesearch")


def westmere_16c():
    return CORE_I7_X980.with_overrides(
        name="hypothetical 16-core Westmere", num_cores=16
    )


def westmere_16c_fat_memory():
    return CORE_I7_X980.with_overrides(
        name="16-core + 2x DRAM",
        num_cores=16,
        dram_bandwidth_bytes_per_s=2 * CORE_I7_X980.dram_bandwidth_bytes_per_s,
    )


def westmere_with_gather():
    table = CORE_I7_X980.isa.cost_table
    vector = dict(table.vector)
    vector[OpClass.GATHER_LANE] = OpCost(0.75, 0.0, "load")
    vector[OpClass.SCATTER_LANE] = OpCost(0.75, 0.0, "store")
    isa = dataclasses.replace(
        CORE_I7_X980.isa,
        name="SSE4.2+gather",
        cost_table=OpCostTable("SSE4.2+gather", dict(table.scalar), vector),
        has_hw_gather=True,
        has_hw_scatter=True,
    )
    core = dataclasses.replace(CORE_I7_X980.core, isa=isa)
    return CORE_I7_X980.with_overrides(
        name="Westmere + HW gather", core=core
    )


def main() -> None:
    machines = (
        CORE_I7_X980,
        westmere_16c(),
        westmere_16c_fat_memory(),
        westmere_with_gather(),
    )
    rows = []
    for machine in machines:
        row = [machine.name]
        for name in BENCHES:
            ladder = measure_ladder(get_benchmark(name), machine)
            row.append(round(ladder.ninja_gap, 1))
            row.append(round(ladder.residual_gap, 2))
        rows.append(tuple(row))

    headers = ["machine"]
    for name in BENCHES:
        headers += [f"{name} gap", f"{name} resid"]
    print(format_table(headers, rows))

    print("\nWhat compiler flags alone achieve on naive BlackScholes:")
    for machine in (CORE_I7_X980, westmere_with_gather()):
        ladder = measure_ladder(get_benchmark("blackscholes"), machine)
        print(
            f"  {machine.name:28s} compiler-only gap "
            f"{ladder.compiler_only_gap:5.1f}X"
        )
    print(
        "\nMore cores widen the naive gap; more bandwidth rescues the "
        "bandwidth-bound kernels; gather hardware lets the compiler act "
        "on unchanged code — all without touching a single kernel."
    )


if __name__ == "__main__":
    main()
